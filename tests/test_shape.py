"""Tests for the separation-logic shape domain (symbolic heaps + lseg)."""

import pytest

from repro.ai import analyze_cfg
from repro.concrete import CfgInterpreter, ConcreteState, exec_stmt
from repro.daig import DaigEngine
from repro.domains import ShapeDomain
from repro.domains.shape import NIL, ListSeg, PointsTo, SymbolicHeap
from repro.lang import ast as A
from repro.lang import build_cfg, parse_expression
from repro.lang.programs import append_program, list_program


@pytest.fixture
def domain():
    return ShapeDomain()


def run(domain, statements, state=None, params=("p", "q")):
    current = state if state is not None else domain.initial(params)
    for stmt in statements:
        current = domain.transfer(stmt, current)
    return current


class TestSymbolicHeap:
    def test_must_differ_from_disequality(self):
        heap = SymbolicHeap(env={"x": 1}, disequalities=[(NIL, 1)])
        assert heap.must_differ(1, NIL)
        assert not heap.must_equal(1, NIL)

    def test_must_equal_through_equalities(self):
        heap = SymbolicHeap(env={"x": 1, "y": 2}, equalities=[(1, 2)])
        assert heap.must_equal(1, 2)

    def test_points_to_source_is_non_null(self):
        heap = SymbolicHeap(env={"x": 1}, points_to=[PointsTo(1, NIL)])
        assert heap.must_differ(1, NIL)

    def test_inconsistency_detection(self):
        heap = SymbolicHeap(equalities=[(1, 2)], disequalities=[(1, 2)])
        assert heap.is_inconsistent()
        null_source = SymbolicHeap(points_to=[PointsTo(1, 2)], equalities=[(1, NIL)])
        assert null_source.is_inconsistent()

    def test_normalize_removes_empty_segments(self):
        heap = SymbolicHeap(env={"x": 1}, lsegs=[ListSeg(1, 2)], equalities=[(1, 2)])
        assert not heap.normalize().lsegs

    def test_abstract_folds_anonymous_cells(self):
        heap = SymbolicHeap(env={"x": 1},
                            points_to=[PointsTo(1, 2), PointsTo(2, NIL)])
        folded = heap.abstract()
        assert folded.lsegs  # the chain through the anonymous α2 became a segment
        assert folded.entails_lseg(1, NIL)

    def test_aggressive_abstraction_folds_named_cells_too(self):
        heap = SymbolicHeap(env={"x": 1, "y": 2}, points_to=[PointsTo(1, 2)])
        assert heap.abstract().points_to  # both ends named: kept by default
        assert not heap.abstract(aggressive=True).points_to

    def test_canonical_is_alpha_invariant(self):
        first = SymbolicHeap(env={"x": 5}, lsegs=[ListSeg(5, NIL)],
                             disequalities=[(NIL, 5)])
        second = SymbolicHeap(env={"x": 9}, lsegs=[ListSeg(9, NIL)],
                              disequalities=[(NIL, 9)])
        assert first.canonical() == second.canonical()

    def test_materialize_existing_points_to(self):
        heap = SymbolicHeap(env={"x": 1}, points_to=[PointsTo(1, 2)])
        cases = heap.materialize_next(1)
        assert len(cases) == 1
        assert cases[0][1] == 2

    def test_materialize_unfolds_segment(self):
        heap = SymbolicHeap(env={"x": 1}, lsegs=[ListSeg(1, NIL)],
                            disequalities=[(NIL, 1)])
        cases = heap.materialize_next(1)
        assert len(cases) == 1
        unfolded, successor = cases[0]
        assert successor is not None
        assert unfolded.next_of(1) == successor

    def test_materialize_possibly_null_reports_fault_case(self):
        heap = SymbolicHeap(env={"x": 1}, lsegs=[ListSeg(1, NIL)])
        cases = heap.materialize_next(1)
        assert any(successor is None for _heap, successor in cases)
        assert any(successor is not None for _heap, successor in cases)

    def test_materialize_null_always_faults(self):
        heap = SymbolicHeap(env={"x": NIL})
        cases = heap.materialize_next(NIL)
        assert all(successor is None for _heap, successor in cases)

    def test_entailment_through_mixed_atoms(self):
        heap = SymbolicHeap(env={"x": 1, "y": 3},
                            points_to=[PointsTo(1, 2)],
                            lsegs=[ListSeg(2, 3), ListSeg(3, NIL)])
        assert heap.entails_lseg(1, NIL)
        assert heap.entails_lseg(2, 3)
        assert not heap.entails_lseg(3, 1)


class TestTransfers:
    def test_initial_state_assumes_wellformed_parameters(self, domain):
        state = domain.initial(("p",))
        disjunct = state.disjuncts[0]
        assert disjunct.entails_lseg(disjunct.env["p"], NIL)

    def test_null_assignment_and_null_test(self, domain):
        state = run(domain, [A.AssignStmt("x", A.NullLit()),
                             A.AssumeStmt(parse_expression("x == null"))])
        assert not state.is_bottom()
        contradictory = run(domain, [A.AssignStmt("x", A.NullLit()),
                                     A.AssumeStmt(parse_expression("x != null"))])
        assert contradictory.is_bottom()

    def test_allocation_is_non_null(self, domain):
        state = run(domain, [A.AssignStmt("n", A.AllocRecord()),
                             A.AssumeStmt(parse_expression("n == null"))])
        assert state.is_bottom()

    def test_copy_assignment_aliases(self, domain):
        state = run(domain, [A.AssignStmt("r", A.Var("p")),
                             A.AssumeStmt(parse_expression("r != p"))])
        assert state.is_bottom()

    def test_field_read_materializes(self, domain):
        state = run(domain, [A.AssumeStmt(parse_expression("p != null")),
                             A.AssignStmt("x", parse_expression("p.next"))])
        assert not state.faults()
        assert not state.is_bottom()

    def test_field_read_on_possibly_null_reports_fault(self, domain):
        state = run(domain, [A.AssignStmt("x", parse_expression("p.next"))])
        assert state.faults()

    def test_field_write_updates_cell(self, domain):
        state = run(domain, [
            A.AssignStmt("n", A.AllocRecord()),
            A.FieldWriteStmt("n", "next", A.Var("q")),
        ])
        disjunct = state.disjuncts[0]
        assert disjunct.next_of(disjunct.env["n"]) == disjunct.env["q"]
        assert not state.faults()

    def test_field_write_through_null_faults(self, domain):
        state = run(domain, [A.AssignStmt("n", A.NullLit()),
                             A.FieldWriteStmt("n", "next", A.NullLit())])
        assert state.faults()

    def test_data_fields_only_checked_for_null(self, domain):
        state = run(domain, [A.AssignStmt("n", A.AllocRecord()),
                             A.FieldWriteStmt("n", "data", A.IntLit(3)),
                             A.AssignStmt("v", parse_expression("n.data"))])
        assert not state.faults()

    def test_scalar_assignments_do_not_touch_heap(self, domain):
        state = run(domain, [A.AssignStmt("i", A.IntLit(0)),
                             A.AssignStmt("i", parse_expression("i + 1"))])
        assert not state.is_bottom()

    def test_join_deduplicates_alpha_equivalent_disjuncts(self, domain):
        left = run(domain, [A.AssignStmt("x", A.Var("p"))])
        right = run(domain, [A.AssignStmt("x", A.Var("p"))])
        assert len(domain.join(left, right).disjuncts) == len(left.disjuncts)

    def test_disjunct_cap_collapses(self):
        domain = ShapeDomain(max_disjuncts=2)
        state = domain.initial(("p",))
        for index in range(4):
            branch = domain.transfer(
                A.AssignStmt("x%d" % index, A.AllocRecord()), state)
            state = domain.join(state, branch)
        assert len(state.disjuncts) <= 2

    def test_widen_converges_on_list_traversal(self, domain):
        state = run(domain, [A.AssumeStmt(parse_expression("p != null")),
                             A.AssignStmt("r", A.Var("p"))], params=("p",))
        def body(s):
            s = domain.transfer(A.AssumeStmt(parse_expression("r.next != null")), s)
            s = domain.transfer(A.AssignStmt("r", parse_expression("r.next")), s)
            return s
        iterate = state
        for _ in range(5):
            nxt = domain.widen(iterate, body(iterate))
            if domain.equal(nxt, iterate):
                break
            iterate = nxt
        else:
            pytest.fail("shape widening did not converge")


class TestConcretization:
    def test_concrete_list_models_lseg(self, domain):
        state = ConcreteState()
        state = exec_stmt(A.AssignStmt("a", A.AllocRecord()), state)
        state = exec_stmt(A.FieldWriteStmt("a", "next", A.NullLit()), state)
        state = state.write("p", state.env["a"]).write("q", None)
        abstract = domain.initial(("p", "q"))
        assert domain.models(state, abstract)

    def test_cyclic_list_does_not_model_lseg_to_null(self, domain):
        state = ConcreteState()
        state = exec_stmt(A.AssignStmt("a", A.AllocRecord()), state)
        state = exec_stmt(A.FieldWriteStmt("a", "next", A.Var("a")), state)
        state = state.write("p", state.env["a"])
        abstract = domain.initial(("p",))
        assert not domain.models(state, abstract)

    def test_nothing_models_bottom(self, domain):
        assert not domain.models(ConcreteState(), domain.bottom())


class TestEndToEndVerification:
    def test_append_is_verified_with_one_unrolling(self, domain):
        cfg = build_cfg(append_program().procedure("append"))
        engine = DaigEngine(cfg, domain)
        exit_state = engine.query_location(cfg.exit)
        assert not exit_state.faults()
        assert domain.verifies_wellformed(exit_state, A.RETURN_VARIABLE)
        assert engine.stats.unrollings == 1

    @pytest.mark.parametrize("name,wellformed", [
        ("foreach", True), ("last", True), ("build", True), ("prepend", True),
        ("indexof", None), ("length", None),
    ])
    def test_list_utilities_are_memory_safe(self, domain, name, wellformed):
        cfg = build_cfg(list_program(name).procedure(name))
        invariants = analyze_cfg(cfg, domain)
        exit_state = invariants[cfg.exit]
        assert not exit_state.faults()
        if wellformed:
            assert domain.verifies_wellformed(exit_state, A.RETURN_VARIABLE)

    def test_broken_append_reports_fault(self, domain):
        cfg = build_cfg(append_program().procedure("append"))
        target = next(edge for edge in cfg.edges
                      if isinstance(edge.stmt, A.AssumeStmt)
                      and "p != null" in str(edge.stmt))
        cfg.replace_edge_statement(target, A.AssumeStmt(A.BoolLit(True)))
        invariants = analyze_cfg(cfg, domain)
        assert invariants[cfg.exit].faults()

    def test_daig_matches_batch(self, domain):
        cfg = build_cfg(list_program("last").procedure("last"))
        invariants = analyze_cfg(cfg, domain)
        engine = DaigEngine(cfg.copy(), domain)
        assert domain.equal(engine.query_location(cfg.exit), invariants[cfg.exit])
