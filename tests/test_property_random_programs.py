"""Property-based tests over randomly generated programs (hypothesis).

Two global properties are exercised on random programs drawn from the
workload generator's grammar:

* **Soundness** (Proposition 3.2): every state the bounded collecting
  semantics observes at a location is abstracted by the analysis result at
  that location, for the interval and octagon domains.
* **From-scratch consistency under edits** (Theorems 6.1/6.3 across program
  versions): after a random sequence of edits, demanded queries through the
  DAIG engine coincide with a from-scratch batch analysis, and the DAIG
  remains well-formed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ai import analyze_cfg
from repro.concrete import ConcreteState, collecting_semantics
from repro.daig import DaigEngine
from repro.domains import IntervalDomain, OctagonDomain, SignDomain
from repro.lang import ast as A
from repro.lang.cfg import Cfg
from repro.workload.generator import WorkloadGenerator

COMMON_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def generated_cfg(seed: int, edits: int) -> Cfg:
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    generator.generate(edits)
    return generator.cfg


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       edits=st.integers(min_value=1, max_value=18))
def test_interval_analysis_is_sound_on_random_programs(seed, edits):
    domain = IntervalDomain()
    cfg = generated_cfg(seed, edits)
    invariants = analyze_cfg(cfg, domain)
    collected = collecting_semantics(cfg, [ConcreteState()], max_steps=4000)
    for loc, states in collected.items():
        for concrete in states:
            assert domain.models(concrete, invariants[loc])


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       edits=st.integers(min_value=1, max_value=14))
def test_octagon_analysis_is_sound_on_random_programs(seed, edits):
    domain = OctagonDomain()
    cfg = generated_cfg(seed, edits)
    invariants = analyze_cfg(cfg, domain)
    collected = collecting_semantics(cfg, [ConcreteState()], max_steps=2500)
    for loc, states in collected.items():
        for concrete in states:
            assert domain.models(concrete, invariants[loc])


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_demanded_results_match_batch_after_random_edits(seed):
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(10)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
    engine.check_consistency()
    fresh = analyze_cfg(engine.cfg.copy(), domain)
    for loc in engine.cfg.reachable_locations():
        assert domain.equal(engine.query_location(loc), fresh[loc])
    engine.check_consistency()


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_spliced_query_all_equals_fresh_engine_after_each_edit(seed):
    """After every random edit, the spliced DAIG answers every location
    exactly like a from-scratch engine, and stays well-formed."""
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(6)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
        engine.check_consistency()
        spliced = engine.query_all()
        fresh = DaigEngine(engine.cfg.copy(), IntervalDomain()).query_all()
        assert set(spliced) == set(fresh)
        for loc in spliced:
            assert domain.equal(spliced[loc], fresh[loc])
        engine.check_consistency()


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       batch=st.integers(min_value=2, max_value=6))
def test_batched_splices_agree_with_per_edit_splices(seed, batch):
    """Coalescing consecutive edits into one splice never changes results."""
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(batch * 2)
    single = DaigEngine(_seed_cfg(), domain)
    batched = DaigEngine(_seed_cfg(), domain)
    for start in range(0, len(steps), batch):
        chunk = steps[start:start + batch]
        for step in chunk:
            step.edit.apply_to_engine(single)
        with batched.batch_edits():
            for step in chunk:
                step.edit.apply_to_engine(batched)
        batched.check_consistency()
        left, right = single.query_all(), batched.query_all()
        assert set(left) == set(right)
        for loc in left:
            assert domain.equal(left[loc], right[loc])


def _seed_cfg():
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_well_formedness_preserved_by_interleaved_queries_and_edits(seed):
    domain = SignDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(8)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
        engine.check_consistency()
        for loc in step.query_locations:
            engine.query_location(loc)
        engine.check_consistency()
