"""Tests for incremental edits: cell-level (Fig. 9) and structural (engine).

The key property is incremental consistency: after any sequence of edits,
demanded query results must equal a from-scratch batch analysis of the
edited program (the paper's Theorems 6.1/6.3 applied across versions).
"""

import pytest

from repro.ai import analyze_cfg
from repro.daig import DaigBuilder, DaigEngine, InvalidEditError, write_cell
from repro.daig import names as N
from repro.domains import IntervalDomain, OctagonDomain, SignDomain
from repro.lang import ast as A
from repro.lang import build_cfg, build_program_cfgs, parse_expression, parse_program
from repro.lang.programs import array_program

from helpers import LOOP_SOURCE, NESTED_SOURCE, random_workload


class TestCellLevelEdits:
    """The D ⊢ n ⇐ v ; D' judgment of Fig. 9."""

    def _engine(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        return cfg, DaigEngine(cfg, interval_domain)

    def test_editing_a_statement_cell_dirties_downstream(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        engine.query_location(cfg.exit)
        builder = engine.builder
        exit_name = builder.state_name(cfg.exit, {})
        assert engine.daig.has_value(exit_name)
        # Edit the first assignment (i = 0 -> i = 5) directly in its cell.
        edge = cfg.out_edges(cfg.entry)[0]
        name = N.stmt_name(edge.src, edge.dst)
        write_cell(engine.daig, builder, name, A.AssignStmt("i", A.IntLit(5)))
        assert not engine.daig.has_value(exit_name)

    def test_edit_rolls_back_unrolled_loops(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        engine.query_location(cfg.exit)
        head = cfg.loop_heads()[0]
        assert engine.builder.current_unrolling(engine.daig, head, {}) >= 2
        edge = cfg.out_edges(cfg.entry)[0]
        write_cell(engine.daig, engine.builder, N.stmt_name(edge.src, edge.dst),
                   A.AssignStmt("i", A.IntLit(3)))
        assert engine.builder.current_unrolling(engine.daig, head, {}) == 1
        engine.daig.check_well_formed()

    def test_dirtying_is_lazy_no_recomputation(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        engine.query_location(cfg.exit)
        transfers_before = engine.stats.transfers
        edge = cfg.out_edges(cfg.entry)[0]
        write_cell(engine.daig, engine.builder, N.stmt_name(edge.src, edge.dst),
                   A.AssignStmt("i", A.IntLit(3)))
        assert engine.stats.transfers == transfers_before

    def test_downstream_only_dirtying(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        engine.query_location(cfg.exit)
        # Editing the last edge (into the exit) must not dirty the loop head.
        last_edge = cfg.in_edges(cfg.exit)[0]
        indexed = cfg.fwd_edges_to(cfg.exit)
        index = indexed[0][0] if len(indexed) > 1 else 0
        write_cell(engine.daig, engine.builder,
                   N.stmt_name(last_edge.src, last_edge.dst, index),
                   A.AssignStmt(A.RETURN_VARIABLE, A.IntLit(0)))
        head = cfg.loop_heads()[0]
        assert engine.daig.has_value(engine.builder.fix_name(head, {}))

    def test_cannot_empty_source_cells(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        edge = cfg.out_edges(cfg.entry)[0]
        with pytest.raises(InvalidEditError):
            write_cell(engine.daig, engine.builder,
                       N.stmt_name(edge.src, edge.dst), None)

    def test_cannot_edit_unknown_cells(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        with pytest.raises(InvalidEditError):
            write_cell(engine.daig, engine.builder, N.stmt_name(77, 88),
                       A.SkipStmt())

    def test_write_statement_in_place(self, interval_domain):
        cfg, engine = self._engine(interval_domain)
        before = engine.query_location(cfg.exit)
        edge = cfg.out_edges(cfg.entry)[0]
        # Starting the counter past the loop bound changes the exit invariant.
        engine.write_statement(edge, A.AssignStmt("i", A.IntLit(20)))
        after = engine.query_location(engine.cfg.exit)
        fresh = analyze_cfg(engine.cfg, interval_domain)[engine.cfg.exit]
        assert interval_domain.equal(after, fresh)
        assert not interval_domain.equal(before, after)


class TestStructuralEdits:
    def test_insert_statement_matches_from_scratch(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        engine.query_location(cfg.exit)
        engine.insert_statement_after(cfg.entry, A.AssignStmt("k", A.IntLit(7)))
        result = engine.query_location(engine.cfg.exit)
        fresh = analyze_cfg(engine.cfg, interval_domain)[engine.cfg.exit]
        assert interval_domain.equal(result, fresh)
        assert interval_domain.numeric_bounds(A.Var("k"), result) == (7, 7)

    def test_insert_conditional_and_loop_match_from_scratch(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        engine.query_location(cfg.exit)
        engine.insert_conditional_after(
            cfg.entry, parse_expression("total > 2"),
            [A.AssignStmt("flagged", A.IntLit(1))],
            [A.AssignStmt("flagged", A.IntLit(0))])
        engine.insert_loop_after(
            cfg.entry, parse_expression("w < 3"),
            [A.AssignStmt("w", parse_expression("w + 1"))])
        fresh = analyze_cfg(engine.cfg, interval_domain)
        for loc in engine.cfg.reachable_locations():
            assert interval_domain.equal(engine.query_location(loc), fresh[loc])

    def test_replace_and_delete_match_from_scratch(self, interval_domain):
        cfg = build_program_cfgs(array_program("swap"))["main"]
        engine = DaigEngine(cfg, interval_domain)
        engine.query_location(cfg.exit)
        edge = engine.cfg.out_edges(engine.cfg.entry)[0]
        engine.replace_statement(edge, A.AssignStmt("extra", A.IntLit(2)))
        engine.delete_statement(engine.cfg.out_edges(engine.cfg.entry)[0])
        fresh = analyze_cfg(engine.cfg, interval_domain)
        for loc in engine.cfg.reachable_locations():
            assert interval_domain.equal(engine.query_location(loc), fresh[loc])

    def test_edit_inside_loop_body_dirties_fixed_point(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        before = engine.query_location(cfg.exit)
        head = engine.cfg.loop_heads()[0]
        body_loc = sorted(engine.cfg.natural_loop(head) - {head})[0]
        engine.insert_statement_after(
            body_loc, A.AssignStmt("total", parse_expression("total + 5")))
        after = engine.query_location(engine.cfg.exit)
        fresh = analyze_cfg(engine.cfg, interval_domain)[engine.cfg.exit]
        assert interval_domain.equal(after, fresh)

    def test_edit_after_loop_reuses_fixed_point(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        engine.query_location(cfg.exit)
        widens_before = engine.stats.widens
        # Insert just before the exit: the loop's fixed point stays valid.
        pre_exit = engine.cfg.in_edges(engine.cfg.exit)[0].src
        engine.insert_statement_after(pre_exit, A.AssignStmt("z", A.IntLit(1)))
        engine.query_location(engine.cfg.exit)
        assert engine.stats.widens == widens_before

    def test_unreachable_location_queries_bottom(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        assert interval_domain.is_bottom(engine.query_location(987654))

    def test_entry_state_override_and_update(self, interval_domain):
        cfg = build_cfg(parse_program(
            "function main(n) { var x = n + 1; return x; }").procedure("main"))
        seeded = interval_domain.transfer(
            A.AssignStmt("n", A.IntLit(5)), interval_domain.initial())
        engine = DaigEngine(cfg, interval_domain, entry_state=seeded)
        result = engine.query_location(cfg.exit)
        assert interval_domain.numeric_bounds(A.Var("x"), result) == (6, 6)
        engine.set_entry_state(interval_domain.transfer(
            A.AssignStmt("n", A.IntLit(10)), interval_domain.initial()))
        result = engine.query_location(cfg.exit)
        assert interval_domain.numeric_bounds(A.Var("x"), result) == (11, 11)


@pytest.mark.parametrize("domain_cls", [SignDomain, IntervalDomain, OctagonDomain])
@pytest.mark.parametrize("seed", [0, 1])
class TestIncrementalConsistencyOverRandomEditSequences:
    """Differential test: incremental results always equal from-scratch results."""

    def test_random_edit_stream(self, domain_cls, seed):
        domain = domain_cls()
        generator, steps = random_workload(seed, edits=18)
        engine = DaigEngine(_empty_cfg(), domain)
        for step in steps:
            step.edit.apply_to_engine(engine)
            engine.check_consistency()
            fresh = analyze_cfg(engine.cfg.copy(), domain)
            for loc in step.query_locations:
                assert domain.equal(engine.query_location(loc), fresh[loc]), (
                    "divergence at %d after %s" % (loc, step.edit.describe()))

    def test_spliced_query_all_equals_fresh_engine_after_every_edit(
            self, domain_cls, seed):
        """After each splice, exhaustive results match a from-scratch engine
        at every location, and the DAIG stays well-formed."""
        domain = domain_cls()
        generator, steps = random_workload(seed + 50, edits=12)
        engine = DaigEngine(_empty_cfg(), domain)
        for step in steps:
            step.edit.apply_to_engine(engine)
            engine.check_consistency()
            spliced = engine.query_all()
            fresh_engine = DaigEngine(engine.cfg.copy(), domain_cls())
            fresh = fresh_engine.query_all()
            assert set(spliced) == set(fresh)
            for loc in spliced:
                assert domain.equal(spliced[loc], fresh[loc]), (
                    "divergence at %d after %s" % (loc, step.edit.describe()))
            engine.check_consistency()

    def test_batched_edit_stream_matches_from_scratch(self, domain_cls, seed):
        """Coalescing a whole stream into one splice is equivalent too."""
        domain = domain_cls()
        generator, steps = random_workload(seed + 100, edits=15)
        engine = DaigEngine(_empty_cfg(), domain)
        with engine.batch_edits():
            for step in steps:
                step.edit.apply_to_engine(engine)
        assert engine.edit_stats.splices == 1
        engine.check_consistency()
        fresh = analyze_cfg(engine.cfg.copy(), domain)
        for loc in engine.cfg.reachable_locations():
            assert domain.equal(engine.query_location(loc), fresh[loc])


def _empty_cfg():
    from repro.lang.cfg import Cfg
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg
