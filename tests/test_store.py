"""Tests for the persistent content-addressed summary store.

Three layers:

* the store backends themselves (round trips, corruption tolerance, the
  wire format header);
* the content digests (restart/binding-order/no-op invariance, change
  exactly when the procedure or a transitive callee changes, stability
  across real child processes);
* the engine integration (warm starts equal cold runs under every policy,
  LRU eviction recovers through the store, garbage collection expires the
  store entries of orphaned contexts).
"""

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program
from repro.store import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    BlobSummaryStore,
    InMemorySummaryStore,
    SqliteSummaryStore,
    StoreDecodeError,
    canonical_bytes,
    cfg_digest,
    decode_summary,
    encode_summary,
    open_store,
    store_from_env,
    store_from_spec,
    summary_store_key,
)
from repro.workload import WorkloadGenerator

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = ("insensitive", "1-call-site", "2-call-site")

CHAIN_PROGRAM = """
function leaf(x) {
  return x + 1;
}

function middle(y) {
  var m = leaf(y);
  return m;
}

function main() {
  var small = middle(1);
  var big = middle(100);
  return small + big;
}
"""

DIAMOND_PROGRAM = """
function leaf(x) { return x + 1; }
function left(y) { var l = leaf(y); return l; }
function right(z) { var r = leaf(z); return r + 10; }
function main() { var a = left(1); var b = right(2); return a + b; }
"""

EVEN_ODD_PROGRAM = """
function even(n) { var r = 1; if (n > 0) { var m = n - 1; r = odd(m); } return r; }
function odd(n) { var r = 0; if (n > 0) { var m = n - 1; r = even(m); } return r; }
function main() { var z = even(6); return z; }
"""


def cfgs_of(source):
    return build_program_cfgs(parse_program(source))


def _fresh_copy(cfgs):
    return {name: cfg.copy() for name, cfg in cfgs.items()}


def _noise(pe):
    pe.insert_statement_after(pe.cfg.entry, A.AssignStmt("noise", A.IntLit(1)))


def _make_store(kind, tmp_path, tag=""):
    if kind == "memory":
        return InMemorySummaryStore()
    if kind == "sqlite":
        return SqliteSummaryStore(str(tmp_path / ("s%s.db" % tag)))
    return BlobSummaryStore(str(tmp_path / ("blobs%s" % tag)))


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["memory", "sqlite", "blob"])
class TestBackends:
    def test_round_trip_and_delete(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        assert store.get("missing") is None
        store.put("k1", b"abc")
        store.put("k2", b"def")
        assert store.get("k1") == b"abc"
        assert len(store) == 2
        assert sorted(store.keys()) == ["k1", "k2"]
        store.put("k1", b"xyz")  # overwrite, not duplicate
        assert store.get("k1") == b"xyz"
        assert len(store) == 2
        assert store.delete("k1") is True
        assert store.delete("k1") is False
        assert store.get("k1") is None
        store.clear()
        assert len(store) == 0
        stats = store.stats()
        assert stats["kind"] == kind
        assert stats["hits"] == 2 and stats["puts"] == 3

    def test_persistence_across_handles(self, kind, tmp_path):
        store = _make_store(kind, tmp_path)
        store.put("key", b"payload")
        spec = store.spec()
        store.close()
        if kind == "memory":
            assert spec is None  # no cross-process identity
            return
        reopened = store_from_spec(*spec)
        assert reopened.get("key") == b"payload"


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_encode_decode_reinterns(self):
        domain = IntervalDomain()
        state = domain.initial(["x", "y"])
        blob = encode_summary(state)
        assert blob.startswith(STORE_MAGIC)
        assert blob[len(STORE_MAGIC)] == STORE_FORMAT_VERSION
        # Interned states re-intern on decode: identity, not just equality.
        assert decode_summary(blob) is state

    @pytest.mark.parametrize("blob", [
        b"",
        b"RP",
        b"XXXX" + bytes((STORE_FORMAT_VERSION,)) + b"junk",
        STORE_MAGIC + bytes((99,)) + b"future-version",
        STORE_MAGIC + bytes((STORE_FORMAT_VERSION,)) + b"not-a-pickle",
    ])
    def test_bad_blobs_raise_decode_error(self, blob):
        with pytest.raises(StoreDecodeError):
            decode_summary(blob)

    def test_open_store_specs(self, tmp_path):
        assert open_store("memory").kind == "memory"
        assert open_store("sqlite:%s" % (tmp_path / "a.db")).kind == "sqlite"
        assert open_store("blob:%s" % (tmp_path / "b")).kind == "blob"
        with pytest.raises(ValueError):
            open_store("carrier-pigeon:nowhere")

    def test_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SUMMARY_STORE", raising=False)
        assert store_from_env() is None
        monkeypatch.setenv("REPRO_SUMMARY_STORE",
                           "sqlite:%s" % (tmp_path / "env.db"))
        assert store_from_env().kind == "sqlite"


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------


class TestDigests:
    def test_restart_invariance(self):
        one = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), IntervalDomain())
        two = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), IntervalDomain())
        for name in one.cfgs:
            assert one.code_digest(name) == two.code_digest(name)
            assert one.deep_digest(name) == two.deep_digest(name)

    def test_binding_order_invariance(self):
        cfgs = cfgs_of(CHAIN_PROGRAM)
        reversed_cfgs = dict(reversed(list(cfgs.items())))
        one = InterproceduralEngine(_fresh_copy(cfgs), IntervalDomain())
        two = InterproceduralEngine(_fresh_copy(reversed_cfgs),
                                    IntervalDomain())
        for name in cfgs:
            assert one.deep_digest(name) == two.deep_digest(name)

    def test_noop_edit_keeps_digests(self):
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM),
                                       IntervalDomain())
        before = {name: engine.deep_digest(name) for name in engine.cfgs}

        def replace_with_same(pe):
            edge = next(e for e in pe.find_edges()
                        if isinstance(e.stmt, A.AssignStmt))
            pe.replace_statement(edge, edge.stmt)

        engine.edit_procedure("leaf", replace_with_same)
        after = {name: engine.deep_digest(name) for name in engine.cfgs}
        assert before == after

    def test_digest_changes_iff_procedure_or_callee_changes(self):
        engine = InterproceduralEngine(cfgs_of(DIAMOND_PROGRAM),
                                       IntervalDomain())
        before_deep = {name: engine.deep_digest(name) for name in engine.cfgs}
        before_code = {name: engine.code_digest(name) for name in engine.cfgs}
        engine.edit_procedure("leaf", _noise)
        after_deep = {name: engine.deep_digest(name) for name in engine.cfgs}
        after_code = {name: engine.code_digest(name) for name in engine.cfgs}
        # The edited procedure's own code digest moved; nobody else's did.
        assert after_code["leaf"] != before_code["leaf"]
        for name in ("left", "right", "main"):
            assert after_code[name] == before_code[name], name
        # Deep digests moved for the procedure and every transitive caller.
        for name in ("leaf", "left", "right", "main"):
            assert after_deep[name] != before_deep[name], name

        # Editing a *caller* leaves the callee's deep digest alone.
        before_deep = after_deep
        engine.edit_procedure("left", _noise)
        assert engine.deep_digest("leaf") == before_deep["leaf"]
        assert engine.deep_digest("right") == before_deep["right"]
        assert engine.deep_digest("left") != before_deep["left"]
        assert engine.deep_digest("main") != before_deep["main"]

    def test_recursive_component_shares_one_digest(self):
        engine = InterproceduralEngine(cfgs_of(EVEN_ODD_PROGRAM),
                                       IntervalDomain())
        assert engine.deep_digest("even") == engine.deep_digest("odd")
        assert engine.deep_digest("even") != engine.deep_digest("main")
        before = engine.deep_digest("even")
        engine.edit_procedure("odd", _noise)
        assert engine.deep_digest("even") == engine.deep_digest("odd")
        assert engine.deep_digest("even") != before

    def test_digest_survives_a_real_child_process(self):
        """Content addressing only works if a different interpreter process
        computes the very same digests for the very same source."""
        child_script = (
            "import sys\n"
            "from repro.lang import build_program_cfgs, parse_program\n"
            "from repro.domains import IntervalDomain\n"
            "from repro.interproc import InterproceduralEngine\n"
            "source = sys.stdin.read()\n"
            "engine = InterproceduralEngine(\n"
            "    build_program_cfgs(parse_program(source)), IntervalDomain())\n"
            "for name in sorted(engine.cfgs):\n"
            "    print(name, engine.deep_digest(name))\n"
        )
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_dir, env.get("PYTHONPATH")) if part)
        completed = subprocess.run(
            [sys.executable, "-c", child_script],
            input=CHAIN_PROGRAM.encode(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=env, check=False)
        assert completed.returncode == 0, completed.stderr.decode()
        child = dict(line.split() for line in
                     completed.stdout.decode().splitlines())
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM),
                                       IntervalDomain())
        assert child == {name: engine.deep_digest(name)
                         for name in engine.cfgs}

    def test_store_key_depends_on_every_component(self):
        domain = IntervalDomain()
        entry = domain.initial(["x"])
        base = summary_store_key("interval", "f", (), "d1", entry)
        assert base != summary_store_key("octagon", "f", (), "d1", entry)
        assert base != summary_store_key("interval", "g", (), "d1", entry)
        assert base != summary_store_key("interval", "f", ("s",), "d1", entry)
        assert base != summary_store_key("interval", "f", (), "d2", entry)
        other = domain.bottom()
        assert not domain.equal(entry, other)
        assert base != summary_store_key("interval", "f", (), "d1", other)
        # And is reproducible.
        assert base == summary_store_key("interval", "f", (), "d1", entry)

    def test_canonical_bytes_rejects_unknown_types(self):
        class Mystery:
            pass

        with pytest.raises(TypeError):
            canonical_bytes(Mystery())


# ---------------------------------------------------------------------------
# Engine integration: warm starts
# ---------------------------------------------------------------------------


class TestWarmStart:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_warm_engine_equals_cold_engine(self, policy_name, tmp_path):
        domain = IntervalDomain()
        store = _make_store("sqlite", tmp_path)
        cold = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                     policy_by_name(policy_name), store=store)
        cold_digest = cold.summary_digest()
        assert cold.counters["interproc_store_writes"] > 0

        warm = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                     policy_by_name(policy_name),
                                     store=store_from_spec(*store.spec()))
        warm.query_entry_exit()
        assert warm.counters["interproc_summary_misses"] == 0
        assert warm.counters["interproc_store_hits"] > 0
        assert warm.counters["interproc_store_writes"] == 0
        assert warm.summary_digest() == cold_digest

    def test_recursive_program_warm_digest_equality(self, tmp_path):
        """Recursion re-runs its summary fixpoint on a warm start (cold
        runs only memoize the post-fixpoint entry), but the *results* must
        still be digest-equal — the warm win degrades, soundness does not."""
        domain = IntervalDomain()
        store = _make_store("sqlite", tmp_path)
        cold = InterproceduralEngine(cfgs_of(EVEN_ODD_PROGRAM), domain,
                                     store=store)
        cold_digest = cold.summary_digest()
        warm = InterproceduralEngine(cfgs_of(EVEN_ODD_PROGRAM), domain,
                                     store=store)
        assert warm.summary_digest() == cold_digest

    def test_corrupt_blob_degrades_to_recompute(self, tmp_path):
        domain = IntervalDomain()
        store = _make_store("sqlite", tmp_path)
        cold = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                     store=store)
        cold_digest = cold.summary_digest()
        for key in store.keys():
            store.put(key, b"garbage, not a summary")

        warm = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                     store=store)
        warm_digest = warm.summary_digest()
        assert warm_digest == cold_digest
        assert warm.counters["interproc_store_errors"] > 0
        assert warm.counters["interproc_summary_misses"] > 0
        # The corrupt blobs were dropped and rewritten with good ones.
        assert warm.counters["interproc_store_writes"] > 0
        third = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                      store=store)
        third.query_entry_exit()
        assert third.counters["interproc_summary_misses"] == 0
        assert third.counters["interproc_store_errors"] == 0

    def test_store_spec_string_accepted_by_engine(self, tmp_path):
        path = tmp_path / "spec.db"
        engine = InterproceduralEngine(
            cfgs_of(CHAIN_PROGRAM), IntervalDomain(),
            store="sqlite:%s" % path)
        engine.query_entry_exit()
        assert engine.counters["interproc_store_writes"] > 0
        assert path.exists()

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           policy_name=st.sampled_from(POLICIES))
    def test_warm_start_equals_cold_after_random_edit_streams(
            self, seed, policy_name):
        """Property: after any edit stream, a fresh engine warm-started
        from the edited session's store answers exactly like a storeless
        from-scratch engine on the final program."""
        domain = IntervalDomain()
        generator = WorkloadGenerator(seed=seed, queries_per_edit=2)
        workload = generator.generate_multiprocedure(edits=6, procedures=4)
        store = InMemorySummaryStore()
        session = InterproceduralEngine(workload.fresh_cfgs(), domain,
                                        policy_by_name(policy_name),
                                        store=store)
        for step in workload.steps:
            session.edit_procedure(step.procedure, step.edit.apply_to_engine)
            for procedure, loc in step.query_sites:
                session.query(procedure, loc)
        final_cfgs = _fresh_copy(session.cfgs)
        roots = session.queried_roots()
        session_digest = session.summary_digest()

        def replay(engine):
            for procedure in roots:
                engine.query(procedure, engine.cfgs[procedure].entry)
            return engine.summary_digest()

        warm = InterproceduralEngine(_fresh_copy(final_cfgs), domain,
                                     policy_by_name(policy_name), store=store)
        oracle = InterproceduralEngine(_fresh_copy(final_cfgs), domain,
                                       policy_by_name(policy_name))
        assert replay(warm) == replay(oracle) == session_digest
        assert warm.counters["interproc_store_errors"] == 0
        assert warm.counters["interproc_callsite_scans"] == 0


# ---------------------------------------------------------------------------
# Memo-table eviction + store interplay
# ---------------------------------------------------------------------------


class TestMemoStoreInterplay:
    def test_memo_stats_counters(self):
        from repro.daig.memo import MemoTable
        table = MemoTable(capacity=2)
        table.store("f", (1,), "a")
        table.store("f", (2,), "b")
        table.lookup("f", (1,))
        table.lookup("f", (3,))
        table.store("f", (3,), "c")  # evicts (2,), the least recently used
        stats = table.stats()
        assert stats == {"entries": 2, "hits": 1, "misses": 1, "stores": 3,
                         "evictions": 1, "capacity": 2}
        assert table.lookup("f", (2,)) == (False, None)
        assert table.lookup("f", (1,)) == (True, "a")

    def test_evicted_summaries_recover_through_the_store(self):
        """With a tiny memo capacity the engine evicts constantly, but the
        write-through store means a re-demanded summary is served from the
        second tier — summary misses do not grow after the initial run."""
        domain = IntervalDomain()
        store = InMemorySummaryStore()
        engine = InterproceduralEngine(cfgs_of(DIAMOND_PROGRAM), domain,
                                       store=store, memo_capacity=4)
        engine.query_entry_exit()
        misses_after_cold = engine.counters["interproc_summary_misses"]
        assert misses_after_cold > 0
        assert engine._summary_memo.stats()["evictions"] > 0

        # Churn the shared table far past its capacity so every summary
        # entry is certainly evicted before the re-demand below.
        for i in range(32):
            engine._summary_memo.store("churn", (i,), i)
        assert len(engine._summary_memo) <= 4

        # Edit main: every call cell re-evaluates, the callees' digests are
        # unchanged, and their (long evicted) summaries must come back from
        # the store, not from re-running the callee DAIGs.
        engine.edit_procedure("main", _noise)
        hits_before = engine.counters["interproc_store_hits"]
        engine.query_entry_exit()
        assert engine.counters["interproc_summary_misses"] == misses_after_cold
        assert engine.counters["interproc_store_hits"] > hits_before


# ---------------------------------------------------------------------------
# Garbage collection expires store entries
# ---------------------------------------------------------------------------


class TestStoreGarbageCollection:
    def test_collect_garbage_expires_orphaned_context_entries(self, tmp_path):
        """Under 1-call-site sensitivity each call site is its own context;
        deleting a call site orphans its context, and collect_garbage must
        expire that context's store entries while keeping live ones."""
        domain = IntervalDomain()
        store = _make_store("sqlite", tmp_path)
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       policy_by_name("1-call-site"),
                                       store=store)
        engine.summary_digest()  # populate every live context's summary
        entries_before = len(store)
        assert entries_before > 0
        live_contexts = len(engine.contexts_of("middle"))
        assert live_contexts == 2  # two call sites in main

        def drop_second_call(pe):
            calls = [e for e in pe.find_edges()
                     if isinstance(e.stmt, A.CallStmt)
                     and e.stmt.function == "middle"]
            pe.replace_statement(
                calls[-1], A.AssignStmt(calls[-1].stmt.target, A.IntLit(0)))

        engine.edit_procedure("main", drop_second_call)
        collected = engine.collect_garbage()
        assert collected > 0
        assert engine.counters["interproc_store_expired"] > 0
        assert len(store) < entries_before
        # The surviving context's summaries answer without recomputation
        # after the engine is restarted on the edited program.
        warm = InterproceduralEngine(_fresh_copy(engine.cfgs), domain,
                                     policy_by_name("1-call-site"),
                                     store=store)
        warm.query_entry_exit()
        assert warm.counters["interproc_summary_misses"] == 0

    def test_collect_garbage_without_store_still_works(self):
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM),
                                       IntervalDomain(),
                                       policy_by_name("1-call-site"))
        engine.summary_digest()
        engine.edit_procedure("main", _noise)
        engine.collect_garbage()  # must not trip over the absent store
        assert engine.counters["interproc_store_expired"] == 0


# ---------------------------------------------------------------------------
# Workload-driver integration
# ---------------------------------------------------------------------------


def test_driver_reports_store_stats(tmp_path):
    from repro.analysis.config import InterprocIncrementalDemandConfiguration
    from repro.workload import generate_interproc_trials, run_interproc_trial

    workload = generate_interproc_trials(edits=10, trials=1, procedures=4)[0]
    configuration = InterprocIncrementalDemandConfiguration(
        workload.fresh_cfgs(), IntervalDomain(),
        store="sqlite:%s" % (tmp_path / "driver.db"))
    result = run_interproc_trial(configuration, workload.steps)
    assert result.work["interproc_store_writes"] > 0
    assert "summary_store_puts" in result.work
    assert result.work["summary_store_entries"] > 0
