"""Tests for the non-relational environment domains (sign/constant/interval).

Covers the abstract environment's lattice operations, transfer functions
(including ``assume`` refinement and arrays), the concretization relation
used by the soundness tests, and end-to-end soundness of the batch analysis
against the concrete collecting semantics on the subject programs.
"""

import pytest

from repro.ai import analyze_cfg
from repro.concrete import ConcreteState, collecting_semantics, initial_state
from repro.domains import ConstantDomain, IntervalDomain, SignDomain
from repro.domains.nonrel import ArraySummary, ScalarValue
from repro.lang import ast as A
from repro.lang import build_cfg, parse_expression, parse_program
from repro.lang.programs import array_program

from helpers import BRANCH_SOURCE, LOOP_SOURCE


def transfer_sequence(domain, statements, state=None):
    current = state if state is not None else domain.initial()
    for stmt in statements:
        current = domain.transfer(stmt, current)
    return current


class TestLatticeStructure:
    @pytest.mark.parametrize("domain_cls", [SignDomain, ConstantDomain, IntervalDomain])
    def test_bottom_below_everything(self, domain_cls):
        domain = domain_cls()
        state = domain.transfer(A.AssignStmt("x", A.IntLit(1)), domain.initial())
        assert domain.leq(domain.bottom(), state)
        assert not domain.leq(state, domain.bottom())
        assert domain.is_bottom(domain.bottom())

    def test_join_drops_disagreeing_bindings(self, interval_domain):
        left = interval_domain.transfer(A.AssignStmt("x", A.IntLit(1)),
                                        interval_domain.initial())
        right = interval_domain.transfer(A.AssignStmt("y", A.IntLit(2)),
                                         interval_domain.initial())
        joined = interval_domain.join(left, right)
        # x is only known on one side, so the join knows nothing about it.
        assert joined.get("x") is None and joined.get("y") is None

    def test_join_merges_common_bindings(self, interval_domain):
        base = interval_domain.initial()
        left = interval_domain.transfer(A.AssignStmt("x", A.IntLit(1)), base)
        right = interval_domain.transfer(A.AssignStmt("x", A.IntLit(5)), base)
        joined = interval_domain.join(left, right)
        assert interval_domain.numeric_bounds(A.Var("x"), joined) == (1, 5)

    def test_widen_environment(self, interval_domain):
        base = interval_domain.initial()
        older = interval_domain.transfer(A.AssignStmt("i", A.IntLit(0)), base)
        newer = interval_domain.transfer(A.AssignStmt("i", A.IntLit(1)), base)
        widened = interval_domain.widen(older, newer)
        assert interval_domain.numeric_bounds(A.Var("i"), widened) == (0, None)

    def test_equal_is_structural(self, interval_domain):
        a = interval_domain.transfer(A.AssignStmt("x", A.IntLit(1)),
                                     interval_domain.initial())
        b = interval_domain.transfer(A.AssignStmt("x", A.IntLit(1)),
                                     interval_domain.initial())
        assert interval_domain.equal(a, b)
        assert hash(a) == hash(b)


class TestTransfers:
    def test_assignment_and_expression_evaluation(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("x", A.IntLit(4)),
            A.AssignStmt("y", parse_expression("x * 2 + 1")),
        ])
        assert interval_domain.numeric_bounds(A.Var("y"), state) == (9, 9)

    def test_assume_refines_both_variables(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("i", A.IntLit(3)),
            A.AssumeStmt(parse_expression("i < n")),
        ])
        assert interval_domain.numeric_bounds(A.Var("n"), state)[0] == 4

    def test_assume_infeasible_comparison_gives_bottom(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("x", A.IntLit(1)),
            A.AssumeStmt(parse_expression("x > 5")),
        ])
        assert interval_domain.is_bottom(state)

    def test_assume_equality_meets(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssumeStmt(parse_expression("x == 7")),
        ])
        assert interval_domain.numeric_bounds(A.Var("x"), state) == (7, 7)

    def test_assume_null_tests(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("p", A.NullLit()),
            A.AssumeStmt(parse_expression("p != null")),
        ])
        assert interval_domain.is_bottom(state)
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("p", A.IntLit(3)),
            A.AssumeStmt(parse_expression("p == null")),
        ])
        assert interval_domain.is_bottom(state)

    def test_conjunction_and_disjunction(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssumeStmt(parse_expression("x >= 0 && x <= 10")),
        ])
        assert interval_domain.numeric_bounds(A.Var("x"), state) == (0, 10)
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("x", A.IntLit(20)),
            A.AssumeStmt(parse_expression("x < 5 || x > 15")),
        ])
        assert not interval_domain.is_bottom(state)

    def test_array_literal_summary(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("a", parse_expression("[1, 2, 3]")),
        ])
        binding = state.get("a")
        assert isinstance(binding, ArraySummary)
        assert interval_domain.array_length_bounds(A.Var("a"), state) == (3, 3)
        assert interval_domain.numeric_bounds(
            parse_expression("a[0]"), state) == (1, 3)
        assert interval_domain.numeric_bounds(
            parse_expression("a.length"), state) == (3, 3)

    def test_array_write_is_weak_update(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("a", parse_expression("[1, 1]")),
            A.ArrayWriteStmt("a", A.IntLit(0), A.IntLit(9)),
        ])
        assert interval_domain.numeric_bounds(parse_expression("a[1]"), state) == (1, 9)
        assert interval_domain.array_length_bounds(A.Var("a"), state) == (2, 2)

    def test_call_havocs_target_and_array_arguments(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("a", parse_expression("[1, 2]")),
            A.AssignStmt("x", A.IntLit(5)),
            A.CallStmt("x", "mystery", (A.Var("a"),)),
        ])
        assert state.get("x") is None
        assert interval_domain.array_length_bounds(A.Var("a"), state) == (2, 2)
        assert interval_domain.numeric_bounds(
            parse_expression("a[0]"), state) == (None, None)

    def test_field_operations_are_sound_no_ops(self, interval_domain):
        state = transfer_sequence(interval_domain, [
            A.AssignStmt("x", parse_expression("r.next")),
            A.FieldWriteStmt("r", "next", A.IntLit(1)),
        ])
        assert interval_domain.numeric_bounds(A.Var("x"), state) == (None, None)

    def test_unknown_variables_are_top(self, interval_domain):
        state = interval_domain.initial()
        assert interval_domain.numeric_bounds(A.Var("ghost"), state) == (None, None)


class TestConcretization:
    def test_models_accepts_consistent_states(self, interval_domain):
        abstract = transfer_sequence(interval_domain, [
            A.AssignStmt("x", A.IntLit(3)),
            A.AssignStmt("a", parse_expression("[1, 2]")),
        ])
        from repro.concrete import ArrayValue
        concrete = initial_state(x=3, a=ArrayValue([1, 2]))
        assert interval_domain.models(concrete, abstract)

    def test_models_rejects_out_of_range(self, interval_domain):
        abstract = transfer_sequence(interval_domain, [A.AssignStmt("x", A.IntLit(3))])
        assert not interval_domain.models(initial_state(x=99), abstract)

    def test_nothing_models_bottom(self, interval_domain):
        assert not interval_domain.models(initial_state(), interval_domain.bottom())

    def test_null_flag(self, interval_domain):
        abstract = transfer_sequence(interval_domain, [A.AssignStmt("p", A.NullLit())])
        assert interval_domain.models(initial_state(p=None), abstract)
        assert not interval_domain.models(initial_state(p=7), abstract)


class TestInterproceduralHooks:
    def test_call_entry_binds_parameters(self, interval_domain):
        caller = transfer_sequence(interval_domain, [A.AssignStmt("x", A.IntLit(5))])
        entry = interval_domain.call_entry(caller, ("a",), (parse_expression("x + 1"),))
        assert interval_domain.numeric_bounds(A.Var("a"), entry) == (6, 6)

    def test_call_return_binds_result(self, interval_domain):
        caller = transfer_sequence(interval_domain, [A.AssignStmt("x", A.IntLit(5))])
        callee_exit = transfer_sequence(interval_domain, [
            A.AssignStmt(A.RETURN_VARIABLE, A.IntLit(42))])
        after = interval_domain.call_return(caller, callee_exit, "y", ())
        assert interval_domain.numeric_bounds(A.Var("y"), after) == (42, 42)
        assert interval_domain.numeric_bounds(A.Var("x"), after) == (5, 5)


@pytest.mark.parametrize("domain_cls", [SignDomain, ConstantDomain, IntervalDomain])
class TestSoundnessAgainstConcreteSemantics:
    """Proposition 3.2: every collected concrete state models the invariant."""

    @pytest.mark.parametrize("source", [LOOP_SOURCE, BRANCH_SOURCE])
    def test_small_programs(self, domain_cls, source):
        domain = domain_cls()
        cfg = build_cfg(parse_program(source).procedure("main"))
        invariants = analyze_cfg(cfg, domain)
        initial_states = [ConcreteState(env={name: value})
                          for name in cfg.params for value in (-2, 0, 3)]
        initial_states = initial_states or [ConcreteState()]
        collected = collecting_semantics(cfg, initial_states)
        for loc, states in collected.items():
            for concrete in states:
                assert domain.models(concrete, invariants[loc]), (
                    "unsound at %d with %s" % (loc, domain.name))

    @pytest.mark.parametrize("program_name", ["sum", "reverse", "count"])
    def test_array_subjects(self, domain_cls, program_name):
        domain = domain_cls()
        from repro.lang import build_program_cfgs
        cfg = build_program_cfgs(array_program(program_name))["main"]
        invariants = analyze_cfg(cfg, domain)
        collected = collecting_semantics(cfg, [ConcreteState()])
        for loc, states in collected.items():
            for concrete in states:
                assert domain.models(concrete, invariants[loc])
