"""Unit tests for the concrete semantics (the soundness oracle)."""

import pytest

from repro.concrete import (
    ArrayValue,
    CfgInterpreter,
    ConcreteError,
    ConcreteState,
    InfeasibleError,
    NullDereferenceError,
    OutOfBoundsError,
    ProgramInterpreter,
    collecting_semantics,
    eval_expr,
    exec_stmt,
    initial_state,
)
from repro.lang import ast as A
from repro.lang import build_cfg, build_program_cfgs, parse_expression, parse_program
from repro.lang.programs import append_program, array_program

from helpers import LOOP_SOURCE


def evaluate(source: str, **bindings):
    return eval_expr(parse_expression(source), initial_state(**bindings))


class TestExpressionEvaluation:
    def test_arithmetic(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("10 - 4") == 6
        assert evaluate("7 / 2") == 3
        assert evaluate("-7 / 2") == -3  # truncation toward zero
        assert evaluate("7 % 3") == 1

    def test_division_by_zero_is_an_error(self):
        with pytest.raises(ConcreteError):
            evaluate("1 / 0")

    def test_comparisons_and_logic(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 1") is False
        assert evaluate("1 == 1 && 2 > 1") is True
        assert evaluate("1 == 2 || 3 >= 3") is True
        assert evaluate("!(1 == 2)") is True

    def test_variables_and_unbound_error(self):
        assert evaluate("x + 1", x=4) == 5
        with pytest.raises(ConcreteError):
            evaluate("missing")

    def test_array_literals_reads_and_length(self):
        assert evaluate("[1, 2, 3].length") == 3
        assert evaluate("[4, 5, 6][1]") == 5

    def test_array_out_of_bounds(self):
        with pytest.raises(OutOfBoundsError):
            evaluate("[1, 2][5]")
        with pytest.raises(OutOfBoundsError):
            evaluate("a[0 - 1]", a=ArrayValue([1]))

    def test_null_field_read_faults(self):
        with pytest.raises(NullDereferenceError):
            evaluate("p.next", p=None)


class TestStatementExecution:
    def test_assignment(self):
        state = exec_stmt(A.AssignStmt("x", A.IntLit(3)), ConcreteState())
        assert state.env["x"] == 3

    def test_allocation_and_field_write(self):
        state = exec_stmt(A.AssignStmt("n", A.AllocRecord()), ConcreteState())
        state = exec_stmt(A.FieldWriteStmt("n", "next", A.NullLit()), state)
        address = state.env["n"]
        assert state.heap[address]["next"] is None

    def test_assume_feasible_and_infeasible(self):
        state = initial_state(x=5)
        assert exec_stmt(A.AssumeStmt(parse_expression("x > 0")), state).env["x"] == 5
        with pytest.raises(InfeasibleError):
            exec_stmt(A.AssumeStmt(parse_expression("x < 0")), state)

    def test_array_write(self):
        state = initial_state(a=ArrayValue([1, 2, 3]))
        state = exec_stmt(A.ArrayWriteStmt("a", A.IntLit(1), A.IntLit(9)), state)
        assert state.env["a"].elements == [1, 9, 3]

    def test_array_write_out_of_bounds(self):
        state = initial_state(a=ArrayValue([1]))
        with pytest.raises(OutOfBoundsError):
            exec_stmt(A.ArrayWriteStmt("a", A.IntLit(4), A.IntLit(0)), state)

    def test_call_requires_program_interpreter(self):
        with pytest.raises(ConcreteError):
            exec_stmt(A.CallStmt("x", "f", ()), ConcreteState())

    def test_state_snapshots_do_not_alias(self):
        state = initial_state(a=ArrayValue([1, 2]))
        snapshot = state.copy()
        mutated = exec_stmt(A.ArrayWriteStmt("a", A.IntLit(0), A.IntLit(7)), state)
        assert snapshot.env["a"].elements == [1, 2]
        assert mutated.env["a"].elements == [7, 2]


class TestCfgExecution:
    def test_loop_program_result(self):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        final = CfgInterpreter(cfg).run(ConcreteState())
        assert final.env[A.RETURN_VARIABLE] == sum(range(10))

    def test_trace_records_every_location(self):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        trace = CfgInterpreter(cfg).trace(ConcreteState())
        assert trace[0][0] == cfg.entry
        assert trace[-1][0] == cfg.exit

    def test_out_of_fuel(self):
        cfg = build_cfg(parse_program("""
            function main() { var i = 0; while (i < 10) { skip; } return i; }
        """).procedure("main"))
        with pytest.raises(ConcreteError):
            CfgInterpreter(cfg, fuel=50).run(ConcreteState())

    def test_append_builds_a_well_formed_list(self):
        cfg = build_cfg(append_program().procedure("append"))
        state = ConcreteState()
        # Build the list p = [a, b], q = [c] concretely.
        for name in ("a", "b", "c"):
            state = exec_stmt(A.AssignStmt(name, A.AllocRecord()), state)
            state = exec_stmt(A.FieldWriteStmt(name, "next", A.NullLit()), state)
        state = exec_stmt(A.FieldWriteStmt("a", "next", A.Var("b")), state)
        state = state.write("p", state.env["a"]).write("q", state.env["c"])
        final = CfgInterpreter(cfg).run(state)
        # Walk the returned list: it must be null-terminated with 3 cells.
        current = final.env[A.RETURN_VARIABLE]
        length = 0
        while current is not None:
            current = final.read_field(current, "next")
            length += 1
            assert length <= 5
        assert length == 3


class TestProgramInterpreter:
    def test_interprocedural_call(self):
        program = parse_program("""
            function inc(x) { return x + 1; }
            function main(n) { var y = inc(n); var z = inc(y); return z; }
        """)
        cfgs = build_program_cfgs(program)
        assert ProgramInterpreter(cfgs).call("main", [5]) == 7

    def test_array_subject_programs_run(self):
        for name in ("sum", "reverse", "histogram"):
            cfgs = build_program_cfgs(array_program(name))
            result = ProgramInterpreter(cfgs).call("main", [])
            assert isinstance(result, (int, bool))

    def test_arity_mismatch(self):
        cfgs = build_program_cfgs(parse_program("function main(x) { return x; }"))
        with pytest.raises(ConcreteError):
            ProgramInterpreter(cfgs).call("main", [])


class TestCollectingSemantics:
    def test_collects_states_at_every_reachable_location(self):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        collected = collecting_semantics(cfg, [ConcreteState()])
        assert collected[cfg.entry]
        assert collected[cfg.exit]
        head = cfg.loop_heads()[0]
        # The loop head is visited once per iteration plus entry.
        assert len(collected[head]) >= 10

    def test_runtime_errors_terminate_only_that_path(self):
        cfg = build_cfg(parse_program("""
            function main(i) {
              var a = [1, 2];
              var v = a[i];
              return v;
            }""").procedure("main"))
        collected = collecting_semantics(
            cfg, [initial_state(i=0), initial_state(i=9)])
        assert len(collected[cfg.exit]) == 1
